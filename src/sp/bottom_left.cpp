#include "sp/bottom_left.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace dsp::sp {

namespace {

/// Skyline as piecewise-constant heights: segment i spans
/// [xs[i], xs[i+1]) at height hs[i]; xs.front()==0, sentinel xs.back()==W.
struct Skyline {
  std::vector<Length> xs;
  std::vector<Height> hs;

  explicit Skyline(Length width) : xs{0, width}, hs{0} {}

  /// Max height over [x, x+w).
  [[nodiscard]] Height roof(Length x, Length w) const {
    Height top = 0;
    for (std::size_t s = 0; s + 1 < xs.size(); ++s) {
      if (xs[s + 1] <= x) continue;
      if (xs[s] >= x + w) break;
      top = std::max(top, hs[s]);
    }
    return top;
  }

  /// Raise [x, x+w) to height y (y must be >= current roof there).
  void place(Length x, Length w, Height y) {
    // Insert breakpoints at x and x+w, then overwrite the covered segments.
    insert_break(x);
    insert_break(x + w);
    for (std::size_t s = 0; s + 1 < xs.size(); ++s) {
      if (xs[s] >= x && xs[s + 1] <= x + w) hs[s] = y;
    }
    coalesce();
  }

 private:
  void insert_break(Length x) {
    for (std::size_t s = 0; s + 1 < xs.size(); ++s) {
      if (xs[s] == x) return;
      if (xs[s] < x && x < xs[s + 1]) {
        xs.insert(xs.begin() + static_cast<std::ptrdiff_t>(s) + 1, x);
        hs.insert(hs.begin() + static_cast<std::ptrdiff_t>(s) + 1, hs[s]);
        return;
      }
    }
  }

  void coalesce() {
    for (std::size_t s = 0; s + 1 < hs.size();) {
      if (hs[s] == hs[s + 1]) {
        xs.erase(xs.begin() + static_cast<std::ptrdiff_t>(s) + 1);
        hs.erase(hs.begin() + static_cast<std::ptrdiff_t>(s) + 1);
      } else {
        ++s;
      }
    }
  }
};

}  // namespace

SpPacking bottom_left(const Instance& instance) {
  const Length w = instance.strip_width();
  std::vector<std::size_t> order(instance.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = instance.item(a);
    const Item& ib = instance.item(b);
    if (ia.height != ib.height) return ia.height > ib.height;
    if (ia.width != ib.width) return ia.width > ib.width;
    return a < b;
  });

  SpPacking packing;
  packing.position.resize(instance.size());
  Skyline skyline(w);
  for (const std::size_t i : order) {
    const Item& it = instance.item(i);
    // Candidate x positions: skyline breakpoints (left-justified placements).
    Length best_x = 0;
    Height best_y = skyline.roof(0, it.width);
    for (std::size_t s = 1; s + 1 < skyline.xs.size(); ++s) {
      const Length x = skyline.xs[s];
      if (x + it.width > w) break;
      const Height y = skyline.roof(x, it.width);
      if (y < best_y) {
        best_y = y;
        best_x = x;
      }
    }
    packing.position[i] = SpPlacement{best_x, best_y};
    skyline.place(best_x, it.width, best_y + it.height);
  }
  return packing;
}

}  // namespace dsp::sp
