#include "sp/sp.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace dsp::sp {

Height packing_height(const Instance& instance, const SpPacking& packing) {
  DSP_REQUIRE(packing.position.size() == instance.size(),
              "SP packing size mismatch");
  Height top = 0;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    top = std::max(top, packing.position[i].y + instance.item(i).height);
  }
  return top;
}

std::optional<std::string> validate(const Instance& instance,
                                    const SpPacking& packing) {
  if (packing.position.size() != instance.size()) {
    return "SP packing size differs from instance size";
  }
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const SpPlacement& p = packing.position[i];
    const Item& it = instance.item(i);
    if (p.x < 0 || p.x + it.width > instance.strip_width() || p.y < 0) {
      std::ostringstream oss;
      oss << "item " << i << " outside the strip";
      return oss.str();
    }
  }
  for (std::size_t i = 0; i < instance.size(); ++i) {
    for (std::size_t j = i + 1; j < instance.size(); ++j) {
      const SpPlacement& a = packing.position[i];
      const SpPlacement& b = packing.position[j];
      const Item& ia = instance.item(i);
      const Item& ib = instance.item(j);
      const bool x_overlap = a.x < b.x + ib.width && b.x < a.x + ia.width;
      const bool y_overlap = a.y < b.y + ib.height && b.y < a.y + ia.height;
      if (x_overlap && y_overlap) {
        std::ostringstream oss;
        oss << "items " << i << " and " << j << " overlap";
        return oss.str();
      }
    }
  }
  return std::nullopt;
}

Packing as_dsp(const SpPacking& packing) {
  Packing result;
  result.start.reserve(packing.position.size());
  for (const SpPlacement& p : packing.position) result.start.push_back(p.x);
  return result;
}

}  // namespace dsp::sp
