#include "sp/shelf.hpp"

#include <algorithm>
#include <numeric>

namespace dsp::sp {

namespace {

/// Item indices sorted by non-increasing height (ties: wider first, then by
/// index for determinism).
std::vector<std::size_t> by_decreasing_height(const Instance& instance) {
  std::vector<std::size_t> order(instance.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = instance.item(a);
    const Item& ib = instance.item(b);
    if (ia.height != ib.height) return ia.height > ib.height;
    if (ia.width != ib.width) return ia.width > ib.width;
    return a < b;
  });
  return order;
}

}  // namespace

SpPacking nfdh(const Instance& instance) {
  SpPacking packing;
  packing.position.resize(instance.size());
  Height shelf_y = 0;       // bottom of the open shelf
  Height shelf_height = 0;  // height of the first (tallest) item on it
  Length cursor = 0;        // next free x on the open shelf
  for (const std::size_t i : by_decreasing_height(instance)) {
    const Item& it = instance.item(i);
    if (cursor + it.width > instance.strip_width()) {
      shelf_y += shelf_height;
      shelf_height = 0;
      cursor = 0;
    }
    if (shelf_height == 0) shelf_height = it.height;
    packing.position[i] = SpPlacement{cursor, shelf_y};
    cursor += it.width;
  }
  return packing;
}

SpPacking ffdh(const Instance& instance) {
  struct Shelf {
    Height y;
    Length used;
  };
  SpPacking packing;
  packing.position.resize(instance.size());
  std::vector<Shelf> shelves;
  Height top = 0;
  for (const std::size_t i : by_decreasing_height(instance)) {
    const Item& it = instance.item(i);
    bool placed = false;
    for (Shelf& shelf : shelves) {
      if (shelf.used + it.width <= instance.strip_width()) {
        packing.position[i] = SpPlacement{shelf.used, shelf.y};
        shelf.used += it.width;
        placed = true;
        break;
      }
    }
    if (!placed) {
      shelves.push_back(Shelf{top, it.width});
      packing.position[i] = SpPlacement{0, top};
      top += it.height;  // first item on a shelf is its tallest
    }
  }
  return packing;
}

}  // namespace dsp::sp
