#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/packing.hpp"

namespace dsp::sp {

/// Classical (contiguous, unsliced) Strip Packing: every item is an axis-
/// aligned rectangle placed integrally.  DSP relaxes this by slicing; the
/// integrality-gap experiments (paper Fig. 1, [2]) compare the two.
struct SpPlacement {
  Length x = 0;
  Height y = 0;

  [[nodiscard]] bool operator==(const SpPlacement&) const = default;
};

struct SpPacking {
  std::vector<SpPlacement> position;
};

/// Height of the packing: max over items of y + h.
[[nodiscard]] Height packing_height(const Instance& instance, const SpPacking& packing);

/// Full validation: items inside the strip, pairwise non-overlapping.
[[nodiscard]] std::optional<std::string> validate(const Instance& instance,
                                                  const SpPacking& packing);

/// Forgetting the y-coordinates turns any SP packing into a DSP packing with
/// peak at most the SP height — the "SP algorithms apply to DSP" direction
/// discussed in the paper's related work.
[[nodiscard]] Packing as_dsp(const SpPacking& packing);

}  // namespace dsp::sp
