#pragma once

#include "sp/sp.hpp"

namespace dsp::sp {

/// Sleator's strip-packing algorithm [26] (ratio 2.5):
///
///  1. items wider than W/2 are stacked at the bottom (height h0);
///  2. the rest, by non-increasing height, fill one level at y = h0;
///  3. the strip is split into halves at W/2 and subsequent rows always go
///     onto the half with the currently lower top.
///
/// In this repo Sleator + the NFDH area bound stand in for Steinberg [27]
/// (see DESIGN.md substitution 1): they provide the constant-factor upper
/// bounds the paper takes from Steinberg, and the SP-as-DSP baseline.
[[nodiscard]] SpPacking sleator(const Instance& instance);

}  // namespace dsp::sp
