#pragma once

#include "sp/sp.hpp"

namespace dsp::sp {

/// Shelf algorithms of Coffman, Garey, Johnson, Tarjan [17].
///
/// NFDH — Next-Fit Decreasing Height: items sorted by non-increasing height
/// fill the current shelf left to right; when an item does not fit, a new
/// shelf opens above.  Guarantee used throughout the paper's Lemmas 13/14:
///   NFDH height <= 2 * area / W + h_max.
[[nodiscard]] SpPacking nfdh(const Instance& instance);

/// FFDH — First-Fit Decreasing Height: like NFDH but each item goes on the
/// lowest earlier shelf with enough residual width (ratio 1.7 + o(1)).
[[nodiscard]] SpPacking ffdh(const Instance& instance);

}  // namespace dsp::sp
