#pragma once

#include "core/profile.hpp"
#include "sp/sp.hpp"

namespace dsp::sp {

/// Bottom-left skyline heuristic: items in non-increasing height order are
/// placed at the lowest (then leftmost) skyline position that fits.  Not a
/// bounded-ratio algorithm, but the strongest practical SP comparator in the
/// integrality-gap experiments (E1) and a second SP-as-DSP baseline.
///
/// The skyline is stored in a demand-profile backend: dense columns by
/// default, or the segment tree for wide sparse strips.  Both produce the
/// identical packing.
[[nodiscard]] SpPacking bottom_left(const Instance& instance);
[[nodiscard]] SpPacking bottom_left(const Instance& instance,
                                    ProfileBackendKind backend);

}  // namespace dsp::sp
