#pragma once

#include "sp/sp.hpp"

namespace dsp::sp {

/// Bottom-left skyline heuristic: items in non-increasing height order are
/// placed at the lowest (then leftmost) skyline position that fits.  Not a
/// bounded-ratio algorithm, but the strongest practical SP comparator in the
/// integrality-gap experiments (E1) and a second SP-as-DSP baseline.
[[nodiscard]] SpPacking bottom_left(const Instance& instance);

}  // namespace dsp::sp
