#include "sp/sleator.hpp"

#include <algorithm>
#include <numeric>

namespace dsp::sp {

SpPacking sleator(const Instance& instance) {
  const Length w = instance.strip_width();
  SpPacking packing;
  packing.position.resize(instance.size());

  // Step 1: stack the wide items (width > W/2) at the bottom.
  Height h0 = 0;
  std::vector<std::size_t> narrow;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    if (2 * instance.item(i).width > w) {
      packing.position[i] = SpPlacement{0, h0};
      h0 += instance.item(i).height;
    } else {
      narrow.push_back(i);
    }
  }
  std::sort(narrow.begin(), narrow.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = instance.item(a);
    const Item& ib = instance.item(b);
    if (ia.height != ib.height) return ia.height > ib.height;
    return a < b;
  });

  // Step 2: one full-width level at y = h0.
  std::size_t next = 0;
  Length cursor = 0;
  while (next < narrow.size() &&
         cursor + instance.item(narrow[next]).width <= w) {
    packing.position[narrow[next]] = SpPlacement{cursor, h0};
    cursor += instance.item(narrow[next]).width;
    ++next;
  }

  // Tops of the two halves after the first level: a half is covered up to
  // h0 + (height of the tallest level item intersecting it).
  const Length half = w / 2;
  Height top_left = h0;
  Height top_right = h0;
  {
    Length x = 0;
    for (std::size_t k = 0; k < next; ++k) {
      const Item& it = instance.item(narrow[k]);
      if (x < half) top_left = std::max(top_left, h0 + it.height);
      if (x + it.width > half) top_right = std::max(top_right, h0 + it.height);
      x += it.width;
    }
  }

  // Step 3: rows of width <= W/2 onto whichever half is lower.  Every
  // remaining item has width <= W/2, so each row holds at least one item.
  while (next < narrow.size()) {
    const bool left = top_left <= top_right;
    const Length x0 = left ? 0 : half;
    const Length limit = left ? half : w;
    Height row_y = left ? top_left : top_right;
    Height row_height = instance.item(narrow[next]).height;  // tallest first
    Length x = x0;
    while (next < narrow.size() &&
           x + instance.item(narrow[next]).width <= limit) {
      packing.position[narrow[next]] = SpPlacement{x, row_y};
      x += instance.item(narrow[next]).width;
      ++next;
    }
    if (left) {
      top_left = row_y + row_height;
    } else {
      top_right = row_y + row_height;
    }
  }
  return packing;
}

}  // namespace dsp::sp
