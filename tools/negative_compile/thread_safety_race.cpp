// Negative-compile probe for the thread-safety gate (DESIGN.md, "Static
// analysis").  This TU is deliberately race-y: it reads and writes a
// DSP_GUARDED_BY member without its mutex and calls a DSP_REQUIRES method
// from an unlocked scope.  It is valid C++ and must compile cleanly when
// the analysis is off (which is how we know the file itself is not just
// broken); under `clang++ -Wthread-safety -Werror` it MUST fail.
//
// CI runs both compiles (tools/negative_compile in ci.yml).  If this file
// ever compiles with the analysis on, the gate is dead — annotations
// stripped, flag dropped, or macros defined away — and the job fails
// loudly instead of green-lighting unanalyzed locking code forever.
//
// Not part of any CMake target: the library glob only covers src/.

#include "runtime/sync.hpp"

namespace {

class Counter {
 public:
  void increment() {
    const dsp::runtime::MutexLock lock(mutex_);
    ++value_;
  }

  // VIOLATION: reads a guarded member without holding mutex_.
  [[nodiscard]] int racy_read() const { return value_; }

  // VIOLATION: calls a REQUIRES method without holding mutex_.
  void racy_increment() { unsynchronized_add(1); }

 private:
  void unsynchronized_add(int delta) DSP_REQUIRES(mutex_) { value_ += delta; }

  mutable dsp::runtime::Mutex mutex_;
  int value_ DSP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  counter.racy_increment();
  return counter.racy_read();
}
