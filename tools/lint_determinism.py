#!/usr/bin/env python3
"""Determinism lint for the result-affecting tree (DESIGN.md, "Static
analysis").

The solver's output contract is bit-identical answers for identical inputs
— the golden corpus, the canonical-form cache, and the persistence layer
all depend on it.  This lint guards the three classic ways C++ code breaks
that contract silently:

  unordered-container  std::unordered_{map,set,multimap,multiset} in
                       result-affecting code.  Their iteration order is
                       unspecified and varies across libstdc++ versions,
                       hash seeds, and allocation history; any loop over
                       one can leak that order into results.  Flagged at
                       the declaration: a waiver must argue the container
                       is only ever probed point-wise, never iterated.
  banned-randomness    rand()/srand()/rand_r()/drand48()/random_device —
                       nondeterministic or global-state randomness.
                       Seeded std::mt19937 engines are fine (and used by
                       the test generators, which this lint does not
                       cover) because they are pure functions of the seed.
  wall-clock           std::chrono::{system,steady,high_resolution}_clock,
                       time()/clock_gettime()/gettimeofday() — time-based
                       branching makes results depend on the scheduler.
                       Timing belongs in bench/ and the serving layer's
                       stats, both outside the scanned roots.
  fp-outside-allowlist `double`/`float`/`long double` anywhere except the
                       modules blessed to do floating-point arithmetic
                       (the LP solver and its pricing/rounding clients,
                       which own the epsilon discipline documented in
                       lp/simplex.hpp).  Everything else computes in
                       exact integer Length/Height arithmetic, so a stray
                       double is either dead weight or a rounding bug
                       waiting to reorder two packings.

Scope: src/core, src/approx, src/algo, src/lp — the code whose output
feeds the answer.  The service layer intentionally uses time (admission
deadlines, persistence timestamps) and is covered by the thread-safety
analysis instead.

src/runtime gets a narrower, wall-clock-only scan: the auto-tuner
(runtime/autotune.{hpp,cpp}) is the one blessed place where wall-clock
measurements feed back into execution — its choices are proven
result-invariant, so timing there cannot reorder answers.  Every *other*
runtime file must stay clock-free, which is what keeps timing from
leaking through the pool/parallel plumbing into the result-affecting
roots above.  (tools/lint_fixtures/timing_violation is a negative
fixture tree proving this gate actually fires; CI runs the lint against
it and requires failure.)

Waivers are per-line, must name the rule, and must carry a rationale:

    std::unordered_map<u64, int> dedup;  // det-lint: allow(unordered-container): probed by key only, never iterated

A waiver on its own line covers the next line.  Waivers without a
rationale are themselves errors — the point is a reviewable argument, not
a mute button.

Matching runs on comment- and string-stripped text (so prose about clocks
or doubles cannot trip it), with line structure preserved for reporting.
This is a regex lint, not a compiler: it trades soundness for zero
dependencies (plain python3, no clang needed) and is tuned to this tree's
idiom.  If `clang-query` is on PATH it additionally runs an AST matcher
that catches range-for loops over unordered containers that the
declaration scan would only see via the member type.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

# Directories whose code affects results, relative to the repo root.
RESULT_AFFECTING = ("src/core", "src/approx", "src/algo", "src/lp")

# The runtime layer: scanned for wall-clock use only (its concurrency is
# covered by the thread-safety analysis; unordered containers and FP are
# legitimate there).
RUNTIME_DIR = "src/runtime"

# The one blessed wall-clock reader in runtime/: the adaptive-parallelism
# controller.  Its header documents why timing is result-invariant there.
RUNTIME_CLOCK_ALLOWLIST = (
    "src/runtime/autotune.hpp",
    "src/runtime/autotune.cpp",
)

# The observability layer: scanned for wall-clock and randomness.  Spans
# observe time but never feed it back into solving (obs/trace.hpp's
# determinism argument), and the structural enforcement is this pass: the
# one file allowed to name a clock is trace.cpp, where every steady_clock
# call lives out of line.  Any other clock under src/obs — or any clock an
# instrumented result-affecting file would gain — is a finding.
OBS_DIR = "src/obs"
OBS_CLOCK_ALLOWLIST = ("src/obs/trace.cpp",)

# Modules blessed for floating-point arithmetic.  The LP relaxation is
# inherently fractional; its epsilon/comparison discipline is centralized
# and documented in lp/simplex.hpp, and pricing/config_lp consume its
# values.  Keep this list short — every entry widens the surface on which
# FP ordering bugs can appear.
FP_ALLOWLIST = (
    "src/lp/simplex.hpp",
    "src/lp/simplex.cpp",
    "src/approx/pricing.hpp",
    "src/approx/pricing.cpp",
    "src/approx/config_lp.hpp",
    "src/approx/config_lp.cpp",
)

RULES = {
    "unordered-container": re.compile(
        r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\b"
    ),
    "banned-randomness": re.compile(
        r"\b(?:rand|srand|rand_r|drand48|lrand48|mrand48)\s*\("
        r"|\bstd\s*::\s*random_device\b|\brandom_device\s+"
    ),
    "wall-clock": re.compile(
        r"\bstd\s*::\s*chrono\s*::\s*(?:system|steady|high_resolution)_clock\b"
        r"|\b(?:gettimeofday|clock_gettime|timespec_get)\s*\("
        r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    ),
    "fp-outside-allowlist": re.compile(
        r"\b(?:double|float)\b"
    ),
}

WAIVER = re.compile(
    r"//\s*det-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(\S.*))?"
)

CLANG_QUERY_MATCHER = (
    "match cxxForRangeStmt(hasRangeInit(expr(hasType(qualType(hasDeclaration("
    "namedDecl(matchesName(\"unordered_\"))))))))"
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string literals, and char literals, preserving
    newlines (and thus line numbers).  Handles //, /* */, "..." with
    escapes, '...' with escapes; raw strings are rare here and handled as
    ordinary strings conservatively."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_waivers(
    raw_lines: list[str], stripped_lines: list[str]
) -> tuple[dict[int, set[str]], list[str]]:
    """Returns ({line_no: rules waived on that line}, [errors]).  A waiver
    sharing a line with code covers that line; a waiver on its own comment
    line covers the next line that has code on it (so a waiver above a
    wrapped declaration, or one whose rationale spills onto a continuation
    comment line, still reaches it)."""
    waived: dict[int, set[str]] = {}
    errors: list[str] = []
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER.search(line)
        if not m:
            continue
        rule, rationale = m.group(1), m.group(2)
        if rule not in RULES:
            errors.append(f"line {idx}: waiver names unknown rule '{rule}'")
            continue
        if not rationale or not rationale.strip():
            errors.append(
                f"line {idx}: waiver for '{rule}' has no rationale — "
                "write why the use is deterministic"
            )
            continue
        if line[: m.start()].strip():
            target = idx
        else:
            target = idx + 1
            while target <= len(stripped_lines) and not stripped_lines[
                target - 1
            ].strip():
                target += 1
        waived.setdefault(target, set()).add(rule)
    return waived, errors


def lint_file(
    path: pathlib.Path, rel: str, rules: tuple[str, ...] | None = None
) -> list[str]:
    """Lints one file; `rules` restricts the scan (None = every rule),
    which is how the runtime tree gets its wall-clock-only pass."""
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    waived, findings = collect_waivers(raw_lines, stripped_lines)
    findings = [f"{rel}:{msg}" for msg in findings]

    fp_allowed = rel in FP_ALLOWLIST
    for idx, line in enumerate(stripped_lines, start=1):
        for rule, pattern in RULES.items():
            if rules is not None and rule not in rules:
                continue
            if rule == "fp-outside-allowlist" and fp_allowed:
                continue
            if not pattern.search(line):
                continue
            if rule in waived.get(idx, set()):
                continue
            findings.append(
                f"{rel}:{idx}: [{rule}] {raw_lines[idx - 1].strip()}"
            )
    return findings


def run_clang_query(root: pathlib.Path, files: list[pathlib.Path]) -> list[str]:
    """AST pass: range-for over an unordered container (catches iteration
    through members and typedefs the declaration regex cannot see).  Soft
    dependency — silently skipped when clang-query or the compilation
    database is missing."""
    exe = shutil.which("clang-query")
    compdb = root / "build" / "compile_commands.json"
    if not exe or not compdb.exists():
        return []
    sources = [str(f) for f in files if f.suffix == ".cpp"]
    if not sources:
        return []
    try:
        proc = subprocess.run(
            [exe, "-p", str(compdb.parent), "-c", CLANG_QUERY_MATCHER, *sources],
            capture_output=True,
            text=True,
            timeout=600,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired) as err:
        return [f"clang-query pass failed: {err}"]
    findings = []
    for line in proc.stdout.splitlines():
        m = re.match(r"^(\S+?):(\d+):\d+: note:", line)
        if m:
            rel = str(pathlib.Path(m.group(1)).resolve().relative_to(root))
            findings.append(
                f"{rel}:{m.group(2)}: [unordered-container] "
                "range-for over an unordered container (clang-query)"
            )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--no-clang-query",
        action="store_true",
        help="skip the optional clang-query AST pass even if available",
    )
    args = parser.parse_args()
    root = args.root.resolve()

    files: list[pathlib.Path] = []
    for sub in RESULT_AFFECTING:
        d = root / sub
        if not d.is_dir():
            print(f"lint_determinism: missing directory {d}", file=sys.stderr)
            return 2
        files.extend(sorted(d.glob("*.hpp")))
        files.extend(sorted(d.glob("*.cpp")))

    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f, str(f.relative_to(root))))
    if not args.no_clang_query:
        findings.extend(run_clang_query(root, files))

    # Runtime pass: wall-clock only, with the auto-tuner allowlisted — a
    # clock anywhere else in runtime/ is how timing would creep toward the
    # result-affecting roots.
    runtime_dir = root / RUNTIME_DIR
    if not runtime_dir.is_dir():
        print(
            f"lint_determinism: missing directory {runtime_dir}",
            file=sys.stderr,
        )
        return 2
    runtime_files = sorted(runtime_dir.glob("*.hpp")) + sorted(
        runtime_dir.glob("*.cpp")
    )
    for f in runtime_files:
        rel = str(f.relative_to(root))
        if rel in RUNTIME_CLOCK_ALLOWLIST:
            continue
        findings.extend(lint_file(f, rel, rules=("wall-clock",)))
    files.extend(runtime_files)

    # Observability pass: randomness is banned everywhere under src/obs,
    # and wall-clock is pinned to exactly trace.cpp.
    obs_dir = root / OBS_DIR
    if not obs_dir.is_dir():
        print(f"lint_determinism: missing directory {obs_dir}", file=sys.stderr)
        return 2
    obs_files = sorted(obs_dir.glob("*.hpp")) + sorted(obs_dir.glob("*.cpp"))
    for f in obs_files:
        rel = str(f.relative_to(root))
        rules = (
            ("banned-randomness",)
            if rel in OBS_CLOCK_ALLOWLIST
            else ("wall-clock", "banned-randomness")
        )
        findings.extend(lint_file(f, rel, rules=rules))
    files.extend(obs_files)

    if findings:
        print(f"lint_determinism: {len(findings)} finding(s):", file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        print(
            "\nEach use needs fixing or a same-line waiver with a rationale:\n"
            "  // det-lint: allow(<rule>): <why this cannot affect results>",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
