#!/usr/bin/env python3
"""Validate a Chrome trace-event document emitted by --trace-out.

The obs tracer (src/obs/trace.cpp) writes complete ("ph":"X") events with
microsecond fixed-point timestamps, per-thread ids, and the request id
under "args".  CI runs this after serving the golden corpus with tracing
enabled, so a trace that stops loading in chrome://tracing / Perfetto —
or stops nesting, or loses its request ids — fails the job instead of
bitrotting silently.

Checks:
  1. the file parses as JSON and has a "traceEvents" list;
  2. every event is a complete event with the fields the tracer emits
     (name, cat, ph, ts, dur, pid, tid, args.request_id), all well-typed;
  3. per thread, spans nest: sorted by start (ties: longest first), every
     span is either disjoint from or fully contained in the one enclosing
     it — partial overlap means the RAII scoping was violated;
  4. optional: --require-phase NAME asserts a span with that name exists,
     --require-request-ids asserts at least one span carries a nonzero
     request id.

Exit status: 0 clean, 1 on any finding, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def fail(message: str) -> None:
    print(f"check_trace: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_events(events: list) -> None:
    if not isinstance(events, list):
        fail('"traceEvents" is not a list')
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {i} is not an object")
        for field in REQUIRED_FIELDS:
            if field not in event:
                fail(f"event {i} is missing {field!r}")
        if event["ph"] != "X":
            fail(f"event {i} has ph={event['ph']!r}, expected complete 'X'")
        for field in ("ts", "dur"):
            value = event[field]
            # json.loads never produces scientific notation here unless the
            # writer emitted it; bool is an int subclass, so reject it.
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(f"event {i} has non-numeric {field}={value!r}")
            if value < 0:
                fail(f"event {i} has negative {field}={value}")
        args = event["args"]
        request_id = args.get("request_id") if isinstance(args, dict) else None
        if isinstance(request_id, bool) or not isinstance(request_id, int):
            fail(f"event {i} has no integer args.request_id")


def check_nesting(events: list) -> None:
    """Spans on one thread come from RAII scopes: strictly nested or
    disjoint.  A partial overlap (a span ending after the span that
    contains its start) cannot come from scoped timers."""
    by_tid = defaultdict(list)
    for event in events:
        by_tid[event["tid"]].append((event["ts"], event["ts"] + event["dur"], event["name"]))
    for tid, spans in sorted(by_tid.items()):
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        stack = []  # ends of currently-open enclosing spans
        for start, end, name in spans:
            while stack and stack[-1][0] <= start:
                stack.pop()
            if stack and end > stack[-1][0]:
                fail(
                    f"tid {tid}: span {name!r} [{start}, {end}) partially "
                    f"overlaps enclosing span {stack[-1][1]!r} ending at "
                    f"{stack[-1][0]}"
                )
            stack.append((end, name))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-phase",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this name exists (repeatable)",
    )
    parser.add_argument(
        "--require-request-ids",
        action="store_true",
        help="fail unless at least one span carries a nonzero request id",
    )
    options = parser.parse_args()

    try:
        with open(options.trace, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as error:
        print(f"check_trace: cannot read {options.trace}: {error}", file=sys.stderr)
        return 2
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as error:
        fail(f"{options.trace} is not valid JSON: {error}")
    if not isinstance(document, dict) or "traceEvents" not in document:
        fail('top level is not an object with "traceEvents"')

    events = document["traceEvents"]
    check_events(events)
    check_nesting(events)

    names = {event["name"] for event in events}
    for phase in options.require_phase:
        if phase not in names:
            fail(f"required phase {phase!r} absent (saw: {sorted(names)})")
    if options.require_request_ids:
        if not any(event["args"]["request_id"] > 0 for event in events):
            fail("no span carries a nonzero request id")

    print(
        f"check_trace: OK — {len(events)} spans, {len(names)} phases, "
        f"{len({e['tid'] for e in events})} threads"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
