// Fixture: wall-clock in the one allowlisted obs file.  The obs pass must
// NOT flag this (CI greps the lint output to confirm the allowlist works).
#include <chrono>

namespace fixture {

long long span_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
