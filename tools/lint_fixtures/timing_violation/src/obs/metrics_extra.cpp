// Fixture: wall-clock in an obs file that is NOT the allowlisted
// trace.cpp.  The obs pass must flag this — the whole point of the
// allowlist is that exactly one file under src/obs may name a clock.
#include <chrono>

namespace fixture {

long long histogram_stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
