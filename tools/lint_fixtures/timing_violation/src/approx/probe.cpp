// Fixture: wall-clock in a result-affecting root.  The lint must flag
// the clock read below (the comment itself must not trip it — matching
// runs on comment-stripped text).
#include <chrono>

namespace fixture {

long long adaptive_budget() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count() & 0xff;
}

}  // namespace fixture
