// Fixture: a clean result-affecting file (the root must exist for the
// lint to run; it contributes no findings).
namespace fixture {

int identity(int x) { return x; }

}  // namespace fixture
