// Fixture: wall-clock in a runtime file that is NOT the allowlisted
// auto-tuner.  The runtime wall-clock-only pass must flag this.
#include <chrono>

namespace fixture {

long long pool_heartbeat() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
