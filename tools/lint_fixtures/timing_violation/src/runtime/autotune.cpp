// Fixture: the allowlisted auto-tuner reading the clock.  This file must
// NOT be flagged — CI greps the lint output to prove the allowlist is
// honored.
#include <chrono>

namespace fixture {

long long tuner_sample() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
