// libFuzzer harness for the wire-format instance loader (DESIGN.md,
// "Static analysis" → fuzzing).
//
// load_instance is the serving stack's front door: every byte a client
// sends — dsp_solve file arguments and dsp_served solve payloads alike —
// goes through it, and its contract is "throw InvalidInput with a useful
// message, never crash, never accept garbage".  The harness feeds raw
// bytes straight into the auto-detecting loader (binary magic vs. JSON),
// treats InvalidInput as the expected rejection, and lets anything else —
// a signal, a sanitizer report, another exception type — surface as a
// finding.
//
// On an accepted input it also checks the round-trip invariant the format
// documents (`load(save(x)) == x` for both encodings), so the fuzzer
// hunts codec asymmetries, not just parser crashes.
//
// Build with -DDSP_FUZZ=ON.  Under a compiler with -fsanitize=fuzzer this
// is a real libFuzzer binary; otherwise it links the standalone replay
// driver (standalone_main.cpp) that runs corpus files once each, which is
// what the ctest regression entries use.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "service/wire.hpp"
#include "util/check.hpp"

namespace {

void check_round_trip(const dsp::service::WireInstance& instance,
                      dsp::service::WireFormat format) {
  std::ostringstream os;
  dsp::service::save_instance(os, instance, format);
  std::istringstream is(std::move(os).str());
  const dsp::service::WireInstance reloaded =
      dsp::service::load_instance(is, "fuzz round-trip");
  if (!(reloaded == instance)) {
    std::fprintf(stderr, "fuzz_load_instance: %s round-trip mismatch\n",
                 std::string(dsp::service::to_string(format)).c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  dsp::service::WireInstance instance;
  try {
    instance = dsp::service::load_instance(is, "fuzz input");
  } catch (const dsp::InvalidInput&) {
    return 0;  // the documented rejection path
  }
  check_round_trip(instance, dsp::service::WireFormat::kBinary);
  check_round_trip(instance, dsp::service::WireFormat::kJson);
  return 0;
}
