// libFuzzer harness for the dsp_served frame layer (DESIGN.md, "Static
// analysis" → fuzzing).
//
// Drives the exact production codecs in service/frame_codec.hpp — the
// header parser plus every payload decoder a daemon or client can be
// handed over the socket.  The input is interpreted as one frame: the
// first kHeaderSize bytes are the header, the rest the payload, and the
// header's type byte picks the decoder, so the fuzzer explores each
// decoder's full byte space as well as oversized/truncated length
// prefixes.  InvalidInput is the documented rejection; anything else is a
// finding.
//
// Accepted payloads are re-encoded and compared to prove decode/encode
// round-trip identity (the daemon relies on it when it relays cached
// responses).
//
// Build with -DDSP_FUZZ=ON; see fuzz_load_instance.cpp for the
// libFuzzer-vs-standalone-driver split.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "service/frame_codec.hpp"
#include "service/wire.hpp"
#include "util/check.hpp"

namespace {

namespace frame = dsp::service::frame;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_daemon_frame: %s\n", what);
    std::abort();
  }
}

// Requests and responses are separate numbering spaces (direction
// disambiguates on a real socket), so one type byte can name a decoder on
// each side — e.g. 1 is both kSolve and kSolveOk.  The harness drives
// every decoder the byte maps to in either direction, each under its own
// InvalidInput net so a rejection by one does not mask a crash in another.
void decode_payload(std::uint8_t type, const std::string& payload) {
  if (type == frame::kSolve) {
    // A solve request payload is one wire instance (either encoding) —
    // the same surface fuzz_load_instance covers, kept here so the frame
    // fuzzer exercises the daemon's actual dispatch.
    try {
      std::istringstream is(payload);
      (void)dsp::service::load_instance(is, "fuzz solve payload");
    } catch (const dsp::InvalidInput&) {
    }
  }
  if (type == frame::kSolveOk) {
    try {
      const dsp::service::SolveResponse response =
          frame::decode_solve_ok(payload, "fuzz solve_ok payload");
      expect(frame::encode_solve_ok(response) == payload,
             "solve_ok decode/encode round-trip mismatch");
    } catch (const dsp::InvalidInput&) {
    }
  }
  if (type == frame::kStatsOk) {
    try {
      const dsp::service::WireStats stats =
          frame::decode_stats(payload, "fuzz stats_ok payload");
      expect(frame::encode_stats(stats) == payload,
             "stats_ok decode/encode round-trip mismatch");
    } catch (const dsp::InvalidInput&) {
    }
  }
  if (type == frame::kMetricsOk) {
    try {
      const std::string exposition =
          frame::decode_metrics(payload, "fuzz metrics_ok payload");
      expect(frame::encode_metrics(exposition) == payload,
             "metrics_ok decode/encode round-trip mismatch");
    } catch (const dsp::InvalidInput&) {
    }
  }
  // kMetrics (request) carries an empty payload — there is no decoder to
  // drive; the daemon ignores whatever bytes arrive with it.
  if (type == frame::kError || type == frame::kBusy) {
    try {
      const std::string message =
          frame::decode_message(payload, "fuzz message payload");
      expect(frame::encode_message(message) == payload,
             "message decode/encode round-trip mismatch");
    } catch (const dsp::InvalidInput&) {
    }
  }
  // Any other type: the daemon answers with an error frame and closes —
  // there is no decoder to drive.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < frame::kHeaderSize) return 0;
  const frame::Header header =
      frame::parse_header(reinterpret_cast<const char*>(data));
  if (header.length > frame::kMaxPayload) return 0;  // answered + closed
  // Serve whatever payload bytes follow, exactly as the connection loop
  // would after recv'ing min(header.length, what arrived).
  std::string payload(reinterpret_cast<const char*>(data) + frame::kHeaderSize,
                      size - frame::kHeaderSize);
  if (payload.size() > header.length) payload.resize(header.length);
  decode_payload(header.type, payload);
  return 0;
}
