// Replay driver for the fuzz harnesses on compilers without
// -fsanitize=fuzzer (GCC): runs every file named on the command line
// through LLVMFuzzerTestOneInput once and exits.  This is what the ctest
// regression entries link, so checked-in crashers and the seed corpus are
// replayed on every build no matter which toolchain compiled it; the CI
// clang job links the same harness sources against real libFuzzer for the
// coverage-guided smoke run.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "replay: cannot open %s\n", argv[i]);
      return 1;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "replay: %d input(s), no findings\n", replayed);
  return 0;
}
